package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current simulator output")

// TestSmallJSONGolden pins the exact JSON matrix of `eve-figures -small
// -json` under testdata/. Any change to the timing model — cycle counts,
// instruction mixes, breakdowns, energy — shows up as a diff against the
// golden file, so regressions are caught by `go test` instead of by
// eyeballing figures. Refresh intentionally with:
//
//	go test ./cmd/eve-figures -run TestSmallJSONGolden -update
func TestSmallJSONGolden(t *testing.T) {
	results, err := sweep.Matrix(sim.AllSystems(), workloads.Small(),
		sweep.Options{Workers: runtime.GOMAXPROCS(0), AbortOnError: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emitJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "small.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON result matrix diverges from %s.\n"+
			"If the timing-model change is intentional, refresh with -update.\n"+
			"got %d bytes, want %d bytes; first divergence at byte %d",
			golden, len(got), len(want), firstDiff(got, want))
	}
}

// TestFailingCellJSONGolden pins the JSON shape of a matrix containing
// failing cells: a checker rejection keeps its row with a stable one-line
// error, and a panicking cell (zero cycles) emits speedup 0 rather than
// ±Inf — which would not marshal at all. Refresh with -update.
func TestFailingCellJSONGolden(t *testing.T) {
	badCheck := &workloads.Kernel{
		Name: "bad-check", Suite: "t", Input: "64",
		Run: func(b *isa.Builder, vector bool) workloads.CheckFunc {
			addr := b.Mem.AllocU32(64)
			if vector {
				b.SetVL(64)
				b.Load(1, addr)
				b.Store(1, addr)
				b.Fence()
			} else {
				b.ScalarStore(addr, b.ScalarLoad(addr))
			}
			return func() error { return fmt.Errorf("synthetic checker failure\nsecond line is host diagnostics") }
		},
	}
	panics := &workloads.Kernel{
		Name: "panics", Suite: "t", Input: "0",
		Run: func(b *isa.Builder, vector bool) workloads.CheckFunc {
			panic("synthetic simulator bug")
		},
	}
	results, err := sweep.Matrix(
		[]sim.Config{{Kind: sim.SysIO}, {Kind: sim.SysO3}},
		[]*workloads.Kernel{badCheck, panics},
		sweep.Options{Workers: 2})
	if err == nil {
		t.Fatal("matrix with failing kernels reported no aggregate error")
	}
	var buf bytes.Buffer
	if err := emitJSON(&buf, results); err != nil {
		t.Fatalf("emitJSON over failing cells: %v", err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "failing.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("failing-cell JSON diverges from %s; first divergence at byte %d",
			golden, firstDiff(got, want))
	}

	n, msgs := countFailures(results)
	if n != 4 {
		t.Errorf("countFailures = %d, want 4 (both kernels fail on both systems)", n)
	}
	for _, m := range msgs {
		if strings.ContainsRune(m, '\n') {
			t.Errorf("failure message contains a newline (stack leaked): %q", m)
		}
	}
}

// TestDegenerateCellDerivedMetricsMarshal pins the derived-metric guard: a
// cell with a populated snapshot but zero cycles (and zero-access cache
// levels) must emit derived metrics as 0 with "degenerate": true — Go's
// encoding/json errors on NaN/Inf, so an unguarded division would make the
// whole matrix unemittable.
func TestDegenerateCellDerivedMetricsMarshal(t *testing.T) {
	reg := probe.NewRegistry()
	reg.Register("core", constStats{"insts": 0})
	reg.Register("l1d", constStats{"accesses": 0, "misses": 0})
	deg := sim.Result{
		System: sim.Config{Kind: sim.SysIO}.Name(),
		Kernel: "degenerate",
		Cycles: 0,
		Stats:  reg.Snapshot(),
		Err:    fmt.Errorf("synthetic zero-cycle cell"),
	}
	var buf bytes.Buffer
	if err := emitJSON(&buf, [][]sim.Result{{deg}}); err != nil {
		t.Fatalf("emitJSON over a degenerate cell: %v", err)
	}
	out := buf.String()
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("degenerate cell emitted %s:\n%s", bad, out)
		}
	}
	if !strings.Contains(out, `"degenerate": true`) {
		t.Errorf("degenerate cell not flagged in JSON:\n%s", out)
	}
	var rows []jsonResult
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(rows) != 1 || rows[0].Derived == nil {
		t.Fatalf("degenerate cell lost its derived block: %+v", rows)
	}
	d := rows[0].Derived
	if !d.Degenerate {
		t.Error("zero-cycle cell's Derived.Degenerate is false")
	}
	if d.AMAT != 0 || d.DRAMBusUtil != 0 || d.L1D.MissRate != 0 {
		t.Errorf("degenerate cell derived non-zero ratios: %+v", d)
	}
}

// constStats is a minimal probe source for synthetic snapshots.
type constStats map[string]int64

func (m constStats) ProbeStats(s *probe.Scope) {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Counter(n, m[n])
	}
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestBuildJSONRequiresIOColumn locks in the emitJSON fix: the IO baseline
// is looked up by name, and a matrix without an IO column is an error
// instead of a silently wrong speedup against whatever sits at index 0.
func TestBuildJSONRequiresIOColumn(t *testing.T) {
	k := workloads.NewVVAdd(256)
	withIO, err := sweep.Matrix(
		[]sim.Config{{Kind: sim.SysO3}, {Kind: sim.SysIO}}, // IO deliberately not first
		[]*workloads.Kernel{k}, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := buildJSON(withIO)
	if err != nil {
		t.Fatalf("buildJSON with an IO column: %v", err)
	}
	ioCycles := float64(withIO[0][1].Cycles)
	for _, r := range rows {
		want := ioCycles / float64(r.Cycles)
		if r.SpeedupVsIO != want {
			t.Errorf("%s speedup_vs_io = %v, want %v (IO looked up by name)", r.System, r.SpeedupVsIO, want)
		}
	}

	withoutIO := sim.Matrix([]sim.Config{{Kind: sim.SysO3}, {Kind: sim.SysO3IV}}, []*workloads.Kernel{k})
	if _, err := buildJSON(withoutIO); err == nil {
		t.Error("buildJSON without an IO column returned nil error")
	}
}
