// Command eve-figures regenerates the paper's tables and figures from the
// simulator. With no flags it prints everything; -exp selects one of:
// table1, table2, table3, table4, fig1, fig2, fig4, fig6, fig7, fig8, area.
//
//	eve-figures -exp=fig6             # speedup-over-IO sweep (slow: full matrix)
//	eve-figures -exp=fig2             # taxonomy sweep (fast, no workload runs)
//	eve-figures -small                # use reduced inputs for a quick pass
//	eve-figures -parallel=8 -progress # fan the sweep across 8 workers
//
// The (kernel, system) matrix runs on the parallel sweep engine
// (internal/sweep); results are bit-identical to the serial sweep at any
// worker count, and the run aborts on the first validation failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	ieve "repro/internal/eve"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// jsonResult is the machine-readable form of one (kernel, system) cell.
type jsonResult struct {
	Kernel        string           `json:"kernel"`
	System        string           `json:"system"`
	Cycles        int64            `json:"cycles"`
	SpeedupVsIO   float64          `json:"speedup_vs_io"`
	DynamicInstrs uint64           `json:"dynamic_instrs"`
	TotalOps      uint64           `json:"total_ops"`
	VMUStallFrac  float64          `json:"vmu_stall_frac,omitempty"`
	SpawnCost     int64            `json:"spawn_cost,omitempty"`
	EnergyReadEq  float64          `json:"energy_read_eq,omitempty"`
	Breakdown     map[string]int64 `json:"breakdown,omitempty"`
	// Mem carries the per-level memory-hierarchy counters (l1d, l2, llc,
	// dram) pulled from the run's stats registry.
	Mem map[string]jsonMemLevel `json:"mem,omitempty"`
	// Derived carries the interpreted metric set (per-level miss rate, MPKI,
	// AMAT, stall fractions, DRAM bandwidth utilization, Fig 7 shares)
	// computed by internal/metrics; underivable ratios are 0 with the
	// degenerate flag set, so the field always marshals. Omitted for crashed
	// cells, whose snapshot is empty.
	Derived *metrics.Derived `json:"derived,omitempty"`
	// Error carries the cell's validation failure (or recovered panic),
	// truncated to its stable first line. A cell with an error still emits
	// its row, so one bad cell never hides the rest of the matrix.
	Error string `json:"error,omitempty"`
}

// jsonMemLevel is one memory-hierarchy level's counters in a cell.
type jsonMemLevel struct {
	Accesses   int64   `json:"accesses"`
	Misses     int64   `json:"misses,omitempty"`
	MissRate   float64 `json:"miss_rate,omitempty"`
	Writebacks int64   `json:"writebacks,omitempty"`
	MSHRStall  int64   `json:"mshr_stall_cycles,omitempty"`
}

// memJSON extracts the hierarchy levels from a run's stats snapshot (nil for
// crashed cells, whose snapshot is empty).
func memJSON(st probe.Stats) map[string]jsonMemLevel {
	if len(st) == 0 {
		return nil
	}
	out := make(map[string]jsonMemLevel, 4)
	for _, lvl := range []string{"l1d", "l2", "llc"} {
		var m jsonMemLevel
		m.Accesses, _ = st.Int(lvl + ".accesses")
		m.Misses, _ = st.Int(lvl + ".misses")
		m.MissRate, _ = st.Float(lvl + ".miss_rate")
		m.Writebacks, _ = st.Int(lvl + ".writebacks")
		m.MSHRStall, _ = st.Int(lvl + ".mshr.stall_cycles")
		out[lvl] = m
	}
	var d jsonMemLevel
	d.Accesses, _ = st.Int("dram.accesses")
	out["dram"] = d
	return out
}

// firstLine truncates an error rendering to its first line, dropping
// host-dependent diagnostics (panic stacks) so emitted JSON stays stable.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// buildJSON flattens the result matrix. The IO baseline column is located
// by name — result rows make no promise about system ordering — and a row
// without an IO column is an error rather than a silently wrong speedup.
// Failed cells keep their row with an error field; speedups involving a
// failed (zero-cycle) run are emitted as 0 rather than ±Inf.
func buildJSON(results [][]sim.Result) ([]jsonResult, error) {
	ioName := sim.Config{Kind: sim.SysIO}.Name()
	var out []jsonResult
	for _, kr := range results {
		io := 0.0
		found := false
		for _, r := range kr {
			if r.System == ioName {
				io = float64(r.Cycles)
				found = true
				break
			}
		}
		if !found {
			kernel := "(empty row)"
			if len(kr) > 0 {
				kernel = kr[0].Kernel
			}
			return nil, fmt.Errorf("no %s baseline column in the result row for %s", ioName, kernel)
		}
		for _, r := range kr {
			jr := jsonResult{
				Kernel:        r.Kernel,
				System:        r.System,
				Cycles:        r.Cycles,
				DynamicInstrs: r.Mix.DynamicInstrs(),
				TotalOps:      r.Mix.TotalOps(),
				VMUStallFrac:  r.VMUStall,
				SpawnCost:     r.SpawnCost,
				EnergyReadEq:  r.EnergyEq,
				Mem:           memJSON(r.Stats),
			}
			if len(r.Stats) > 0 {
				d := metrics.Derive(r.Stats, r.Cycles)
				jr.Derived = &d
			}
			if io > 0 && r.Cycles > 0 {
				jr.SpeedupVsIO = io / float64(r.Cycles)
			}
			if r.Err != nil {
				jr.Error = firstLine(r.Err.Error())
			}
			if r.Breakdown.Total() > 0 {
				jr.Breakdown = map[string]int64{}
				for c := ieve.Category(0); c < ieve.NumCategories; c++ {
					if r.Breakdown[c] != 0 {
						jr.Breakdown[c.String()] = r.Breakdown[c]
					}
				}
			}
			out = append(out, jr)
		}
	}
	return out, nil
}

// countFailures tallies failed cells and collects their stable messages.
func countFailures(results [][]sim.Result) (int, []string) {
	n := 0
	var msgs []string
	for _, kr := range results {
		for _, r := range kr {
			if r.Err != nil {
				n++
				msgs = append(msgs, fmt.Sprintf("%s/%s: %s", r.Kernel, r.System, firstLine(r.Err.Error())))
			}
		}
	}
	return n, msgs
}

func emitJSON(w io.Writer, results [][]sim.Result) error {
	out, err := buildJSON(results)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func main() {
	os.Exit(run())
}

// run is the command body. The named return keeps every exit on the return
// path, so deferred telemetry flushes (profiler, status server, run log)
// always happen — including on the SIGINT partial-flush exit.
func run() (code int) {
	exp := flag.String("exp", "all", "experiment to regenerate (table1..4, fig1..8, energy, area, all)")
	small := flag.Bool("small", false, "use reduced workload sizes")
	asJSON := flag.Bool("json", false, "emit the raw result matrix as JSON instead of rendered tables")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker goroutines (results are identical at any count)")
	progress := flag.Bool("progress", false, "report per-cell progress and wall time on stderr")
	statusAddr := flag.String("status", "", "serve live /status, /metrics and /debug/pprof/ on this address (e.g. 127.0.0.1:8321; default off)")
	logJSON := flag.String("log-json", "", "append one JSON line per lifecycle event to this file (\"-\" for stderr)")
	prof := telemetry.NewProfiler(flag.CommandLine)
	flag.Parse()

	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "eve-figures:", err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "eve-figures:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	static := map[string]func() string{
		"table1": report.TableI,
		"table2": report.TableII,
		"table3": report.TableIII,
		"fig1":   report.Fig1,
		"fig2":   report.Fig2,
		"fig3":   report.Fig3,
		"fig4":   func() string { return report.Fig4(8) },
		"fig5":   report.Fig5,
		"area":   report.Area,
	}
	needsMatrix := map[string]bool{"table4": true, "fig6": true, "fig7": true, "fig8": true, "energy": true, "all": true}

	which := strings.ToLower(*exp)
	if f, ok := static[which]; ok {
		fmt.Println(f())
		return 0
	}
	if !needsMatrix[which] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", which)
		return 2
	}

	kernels := workloads.Default()
	if *small {
		kernels = workloads.Small()
	}
	systems := sim.AllSystems()
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "simulating %d kernels x %d systems on %d workers...\n",
		len(kernels), len(systems), *parallel)
	// ^C / SIGTERM cancels the sweep through the pool's context: in-flight
	// cells finish, the rest are skipped, and JSON mode still flushes the
	// partial matrix instead of dying mid-write.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	// JSON mode completes the whole matrix and surfaces per-cell errors in
	// the output; rendered-table mode aborts on the first failure, since a
	// table over invalid results is worthless.
	opts := sweep.Options{Workers: *parallel, AbortOnError: !*asJSON, Context: ctx}
	if *progress {
		opts.Observer = sweep.NewProgress(os.Stderr)
	}
	// The telemetry chain wraps the progress printer; observers by contract
	// never touch a Result, so enabling them cannot change any emitted table
	// or JSON byte.
	var logger *telemetry.Logger
	if *logJSON != "" {
		logOut := io.Writer(os.Stderr)
		if *logJSON != "-" {
			f, err := os.OpenFile(*logJSON, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, "eve-figures:", err)
				return 2
			}
			defer func() { _ = f.Close() }()
			logOut = f
		}
		logger = telemetry.NewLogger(logOut, opts.Observer)
		opts.Observer = logger
		stopWatch := telemetry.WatchSignals(logger, os.Interrupt, syscall.SIGTERM)
		defer stopWatch()
		defer func() {
			if err := logger.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "eve-figures: run log:", err)
			}
		}()
	}
	if *statusAddr != "" {
		counters := telemetry.NewCounters(opts.Observer)
		opts.Observer = counters
		srv, err := telemetry.Serve(*statusAddr, counters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eve-figures:", err)
			return 2
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/status\n", srv.Addr())
	}
	results, err := sweep.Matrix(systems, kernels, opts)
	interrupted := ctx.Err() != nil
	if interrupted {
		fmt.Fprintln(os.Stderr, "eve-figures: interrupted; flushing partial results")
	}
	if *asJSON {
		if err := emitJSON(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, "eve-figures:", err)
			return 1
		}
		if interrupted {
			return 130
		}
		if n, msgs := countFailures(results); n > 0 {
			fmt.Fprintf(os.Stderr, "eve-figures: %d cells failed validation:\n", n)
			for _, m := range msgs {
				fmt.Fprintln(os.Stderr, " ", m)
			}
			return 1
		}
		return 0
	}
	if interrupted {
		// Tables over a partial matrix would render misleading numbers.
		return 130
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "VALIDATION FAILURE: %v\n", err)
		return 1
	}
	geo := func(kernel string) bool {
		k, err := workloads.ByName(kernels, kernel)
		return err == nil && k.InGeomean()
	}

	out := map[string]func() string{
		"table4": func() string { return report.TableIV(systems, results) },
		"fig6":   func() string { return report.Fig6(systems, results, geo) },
		"fig7":   func() string { return report.Fig7(systems, results) },
		"fig8":   func() string { return report.Fig8(systems, results) },
		"energy": func() string { return report.Energy(systems, results) },
	}
	if which == "all" {
		for _, name := range []string{"table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4", "fig5", "area"} {
			fmt.Println(static[name]())
		}
		for _, name := range []string{"fig6", "table4", "fig7", "fig8", "energy"} {
			fmt.Println(out[name]())
		}
		fmt.Println(report.AreaNormalized(systems, results, geo))
		return 0
	}
	fmt.Println(out[which]())
	if which == "fig6" {
		fmt.Println(report.AreaNormalized(systems, results, geo))
	}
	return 0
}
