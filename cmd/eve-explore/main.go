// Command eve-explore walks a declarative design-space campaign — cache
// geometry, MSHR/bank counts, DRAM latency, EVE-n segmentation, input
// scale/seed — with crash-safe checkpointing: every finished cell is
// appended to a CRC-guarded journal, SIGINT/SIGTERM checkpoint and exit
// cleanly, and -resume skips settled cells and reproduces the
// uninterrupted run's report byte-identically.
//
//	eve-explore -space=space.json -journal=c.log -o=report.json
//	eve-explore -space=space.json -size                  # count cells, run nothing
//	eve-explore -space=- -journal=c.log -resume          # continue a killed campaign
//	eve-explore -space=space.json -cell-timeout=30s -retries=2 -backoff=100ms
//
// The space file is a JSON campaign.Space; axes left empty pin their
// Table III values (seeds default to the canonical 0, n to the full
// factor sweep). A cell that keeps failing is recorded failed-with-reason
// and the campaign completes around it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// loadSpace reads the campaign space from path ("-" = stdin).
func loadSpace(path string) (campaign.Space, error) {
	var s campaign.Space
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return s, fmt.Errorf("read space: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("parse space %s: %w", path, err)
	}
	return s, nil
}

// emitReport writes the report as indented JSON, to stdout or a file. The
// rendering is deterministic, which is what the crash-smoke byte-diff
// checks.
func emitReport(path string, rep *campaign.Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func main() {
	os.Exit(run())
}

// run is the command body. The named return keeps every exit on the return
// path, so deferred telemetry flushes (profiler, status server, run log)
// always happen — including on the SIGINT checkpoint exit.
func run() (code int) {
	spacePath := flag.String("space", "", "campaign space JSON file (\"-\" for stdin); required")
	size := flag.Bool("size", false, "print the space's cell count and exit without simulating")
	journal := flag.String("journal", "", "checkpoint journal path (empty: no crash safety)")
	resume := flag.Bool("resume", false, "reopen the journal and skip already-settled cells")
	out := flag.String("o", "", "write the JSON report to this file instead of stdout")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker goroutines (results are identical at any count)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell wall-clock budget (0: no watchdog)")
	retries := flag.Int("retries", 1, "re-runs per cell after a recoverable failure")
	backoff := flag.Duration("backoff", 0, "base retry delay, doubled per attempt (deterministic, no jitter)")
	fsyncEvery := flag.Int("fsync-every", 1, "fsync the journal every N records (1: every record)")
	interval := flag.Int64("interval", 0, "sample each cell's stats registry every N simulated cycles; feeds the /metrics eve_probe_window_* section, never the report or journal (0: off)")
	progress := flag.Bool("progress", false, "report per-cell progress and wall time on stderr")
	statusAddr := flag.String("status", "", "serve live /status, /metrics and /debug/pprof/ on this address (e.g. 127.0.0.1:8321; default off)")
	logJSON := flag.String("log-json", "", "append one JSON line per lifecycle event to this file (\"-\" for stderr)")
	prof := telemetry.NewProfiler(flag.CommandLine)
	flag.Parse()

	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "eve-explore:", err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "eve-explore:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	if *spacePath == "" {
		fmt.Fprintln(os.Stderr, "eve-explore: -space is required (a JSON campaign space)")
		return 2
	}
	space, err := loadSpace(*spacePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eve-explore:", err)
		return 2
	}
	if *size {
		fmt.Println(space.Size())
		return 0
	}

	// ^C / SIGTERM cancels through the campaign context: in-flight cells
	// finish and land in the journal, pending cells are skipped, and the
	// process exits with the checkpoint intact for a -resume run.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := campaign.RunConfig{
		Space:       space,
		Journal:     *journal,
		Resume:      *resume,
		Workers:     *parallel,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
		Backoff:     *backoff,
		FsyncEvery:  *fsyncEvery,
		Interval:    *interval,
		Context:     ctx,
	}

	// The observer chain, innermost first: progress printer, JSON run log,
	// status-server counters. Telemetry observes through the chain and, by
	// contract, cannot perturb a simulated byte — the report and journal
	// stay byte-identical however much of the chain is enabled.
	var obs sweep.Observer
	if *progress {
		obs = sweep.NewProgress(os.Stderr)
	}
	var logger *telemetry.Logger
	if *logJSON != "" {
		logOut := io.Writer(os.Stderr)
		if *logJSON != "-" {
			f, err := os.OpenFile(*logJSON, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, "eve-explore:", err)
				return 2
			}
			defer func() {
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "eve-explore: run log:", err)
				}
			}()
			logOut = f
		}
		logger = telemetry.NewLogger(logOut, obs)
		obs = logger
		stopWatch := telemetry.WatchSignals(logger, os.Interrupt, syscall.SIGTERM)
		defer stopWatch()
		defer func() {
			if err := logger.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "eve-explore: run log:", err)
			}
		}()
	}
	var counters *telemetry.Counters
	if *statusAddr != "" {
		counters = telemetry.NewCounters(obs)
		obs = counters
		srv, err := telemetry.Serve(*statusAddr, counters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eve-explore:", err)
			return 2
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/status\n", srv.Addr())
	}
	cfg.Observer = obs
	if counters != nil || logger != nil {
		cfg.OnJournal = func(depth int) {
			if counters != nil {
				counters.SetJournalDepth(depth)
			}
			if logger != nil {
				logger.JournalCheckpoint(depth)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "exploring %d cells on %d workers...\n", space.Size(), *parallel)

	rep, err := campaign.Run(cfg)
	var interrupted *campaign.InterruptedError
	switch {
	case errors.As(err, &interrupted):
		fmt.Fprintln(os.Stderr, "eve-explore:", err)
		if *journal == "" {
			fmt.Fprintln(os.Stderr, "eve-explore: no -journal was given, so the partial work is lost")
		}
		return 130
	case err != nil:
		fmt.Fprintln(os.Stderr, "eve-explore:", err)
		return 1
	}

	if err := emitReport(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "eve-explore:", err)
		return 1
	}
	s := rep.Summary
	fmt.Fprintf(os.Stderr, "campaign: %d cells: %d ok, %d failed, %d timeout\n",
		s.Total, s.OK, s.Failed, s.Timeout)
	return 0
}
