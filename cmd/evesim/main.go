// Command evesim runs one benchmark kernel on one simulated system and
// prints the cycle count, instruction characterization and (for EVE) the
// execution-time breakdown.
//
//	evesim -system=O3+EVE-8 -kernel=pathfinder
//	evesim -system=O3+DV -kernel=sw -baseline=IO
//	evesim -system=O3+EVE-8 -kernel=vvadd -stats=text -stats-filter=l2.mshr.,eve.breakdown.
//	evesim -system=O3+EVE-8 -kernel=vvadd -intervals=2000
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/eve"
	"repro/internal/probe"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "evesim:", err)
		os.Exit(1)
	}
}

// run is the command body, parameterized for tests. Output goes through a
// bufio.Writer so per-line write errors latch and surface once at Flush.
// The named return lets the deferred profiler flush report its error.
func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("evesim", flag.ContinueOnError)
	sysName := fs.String("system", "O3+EVE-8", "system to simulate (IO, O3, O3+IV, O3+DV, O3+EVE-{1,2,4,8,16,32})")
	kernel := fs.String("kernel", "vvadd", "benchmark kernel (vvadd, mmult, k-means, pathfinder, jacobi-2d, backprop, sw)")
	baseline := fs.String("baseline", "IO", "baseline system for the speedup report (empty to skip)")
	statsFmt := fs.String("stats", "", "dump the per-component stats registry: text or json")
	statsFilter := fs.String("stats-filter", "", "restrict the -stats dump to a comma-separated list of dotted-path subtrees (e.g. l2.mshr.,eve.breakdown.)")
	intervals := fs.Int64("intervals", 0, "sample the stats registry every N simulated cycles and append the interval time series as JSON (0: off)")
	prof := telemetry.NewProfiler(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil && err == nil {
			err = perr
		}
	}()

	if *statsFmt != "" && *statsFmt != "text" && *statsFmt != "json" {
		return fmt.Errorf("unknown -stats format %q (want text or json)", *statsFmt)
	}
	if *statsFilter != "" && *statsFmt == "" {
		return fmt.Errorf("-stats-filter requires -stats=text or -stats=json")
	}

	if *intervals < 0 {
		return fmt.Errorf("-intervals must be non-negative, got %d", *intervals)
	}

	sys, err := parseSystem(*sysName)
	if err != nil {
		return err
	}
	// Sampling observes without perturbing, so only the reported target
	// needs it; the baseline simulates the plain system.
	sys = sys.WithIntervals(*intervals)
	b, err := eve.BenchmarkByName(*kernel)
	if err != nil {
		return err
	}

	// Simulate the target and the baseline as one parallel sweep: the two
	// cells are independent, so on a multicore host the comparison costs
	// one simulation's wall time instead of two.
	systems := []eve.System{sys}
	compare := *baseline != "" && !strings.EqualFold(*baseline, *sysName)
	if compare {
		bSys, err := parseSystem(*baseline)
		if err != nil {
			return err
		}
		systems = append(systems, bSys)
	}
	matrix, err := eve.SimulateMatrix(systems, []eve.Benchmark{b}, len(systems))
	if err != nil {
		return err
	}
	res := matrix[0][0]
	w := bufio.NewWriter(stdout)
	fmt.Fprintf(w, "kernel        %s (%s)\n", b.Name(), b.Input())
	fmt.Fprintf(w, "system        %s (area %.2fx of O3)\n", res.System, sys.AreaFactor())
	fmt.Fprintf(w, "cycles        %d\n", res.Cycles)
	fmt.Fprintf(w, "dyn. instrs   %d (%.0f%% vector)\n", res.DynamicInstrs, 100*res.VectorPct)
	fmt.Fprintf(w, "total ops     %d\n", res.TotalOps)
	if res.Breakdown != nil {
		fmt.Fprintf(w, "spawn cost    %d cycles\n", res.SpawnCost)
		fmt.Fprintf(w, "vmu stalls    %.1f%% of time (Fig 8 metric)\n", 100*res.VMUStallFraction)
		fmt.Fprintln(w, "breakdown (Fig 7 categories):")
		type kv struct {
			k string
			v int64
		}
		var rows []kv
		var total int64
		for k, v := range res.Breakdown {
			rows = append(rows, kv{k, v})
			total += v
		}
		// Tie-break equal counts by category name: sort.Slice is unstable,
		// so ties would otherwise fall back to randomized map order.
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].v != rows[j].v {
				return rows[i].v > rows[j].v
			}
			return rows[i].k < rows[j].k
		})
		for _, r := range rows {
			if r.v == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-14s %12d  (%.1f%%)\n", r.k, r.v, 100*float64(r.v)/float64(total))
		}
	}
	if compare {
		bRes := matrix[0][1]
		fmt.Fprintf(w, "speedup       %.2fx over %s (%d cycles)\n",
			res.Speedup(bRes), bRes.System, bRes.Cycles)
	}
	if *statsFmt != "" {
		snap := res.Snapshot
		if *statsFilter != "" {
			snap = filterStats(snap, *statsFilter)
			if len(snap) == 0 {
				return fmt.Errorf("no stats match -stats-filter=%q (try -stats=text without a filter to list paths)", *statsFilter)
			}
		}
		if err := dumpStats(w, *statsFmt, snap.Flatten()); err != nil {
			return err
		}
	}
	if res.Intervals != nil {
		fmt.Fprintf(w, "\nintervals (window %d cycles, %d samples):\n", res.Intervals.Window, len(res.Intervals.Samples))
		if err := res.Intervals.WriteJSON(w); err != nil {
			return err
		}
	}
	return w.Flush()
}

// filterStats unions the sub-snapshots of a comma-separated prefix list.
// Overlapping prefixes (eve.,eve.breakdown.) would duplicate entries, so the
// merge re-sorts and dedups; the result preserves Stats' sorted invariant.
func filterStats(s probe.Stats, spec string) probe.Stats {
	var out probe.Stats
	for _, prefix := range strings.Split(spec, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix == "" {
			continue
		}
		out = append(out, s.Filter(prefix)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	dedup := out[:0]
	for i, st := range out {
		if i == 0 || st.Name != out[i-1].Name {
			dedup = append(dedup, st)
		}
	}
	return dedup
}

// dumpStats renders the flattened registry snapshot deterministically: the
// sorted gem5-style text report, or a JSON object (json.Marshal sorts map
// keys, so both forms are byte-stable across runs).
func dumpStats(w io.Writer, format string, stats map[string]float64) error {
	if format == "json" {
		out, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, string(out))
		return err
	}
	names := make([]string, 0, len(stats))
	width := 0
	for name := range stats {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	if _, err := fmt.Fprintln(w, "\nstats (per-component registry):"); err != nil {
		return err
	}
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", width, name, probe.FormatFloat(stats[name])); err != nil {
			return err
		}
	}
	return nil
}

func parseSystem(name string) (eve.System, error) {
	for _, s := range eve.Systems() {
		if strings.EqualFold(s.Name(), name) {
			return s, nil
		}
	}
	return eve.System{}, fmt.Errorf("unknown system %q", name)
}
