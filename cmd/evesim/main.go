// Command evesim runs one benchmark kernel on one simulated system and
// prints the cycle count, instruction characterization and (for EVE) the
// execution-time breakdown.
//
//	evesim -system=O3+EVE-8 -kernel=pathfinder
//	evesim -system=O3+DV -kernel=sw -baseline=IO
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/eve"
	"repro/internal/probe"
)

func main() {
	sysName := flag.String("system", "O3+EVE-8", "system to simulate (IO, O3, O3+IV, O3+DV, O3+EVE-{1,2,4,8,16,32})")
	kernel := flag.String("kernel", "vvadd", "benchmark kernel (vvadd, mmult, k-means, pathfinder, jacobi-2d, backprop, sw)")
	baseline := flag.String("baseline", "IO", "baseline system for the speedup report (empty to skip)")
	statsFmt := flag.String("stats", "", "dump the per-component stats registry: text or json")
	flag.Parse()

	if *statsFmt != "" && *statsFmt != "text" && *statsFmt != "json" {
		fatal(fmt.Errorf("unknown -stats format %q (want text or json)", *statsFmt))
	}

	sys, err := parseSystem(*sysName)
	if err != nil {
		fatal(err)
	}
	b, err := eve.BenchmarkByName(*kernel)
	if err != nil {
		fatal(err)
	}

	// Simulate the target and the baseline as one parallel sweep: the two
	// cells are independent, so on a multicore host the comparison costs
	// one simulation's wall time instead of two.
	systems := []eve.System{sys}
	compare := *baseline != "" && !strings.EqualFold(*baseline, *sysName)
	if compare {
		bSys, err := parseSystem(*baseline)
		if err != nil {
			fatal(err)
		}
		systems = append(systems, bSys)
	}
	matrix, err := eve.SimulateMatrix(systems, []eve.Benchmark{b}, len(systems))
	if err != nil {
		fatal(err)
	}
	res := matrix[0][0]
	fmt.Printf("kernel        %s (%s)\n", b.Name(), b.Input())
	fmt.Printf("system        %s (area %.2fx of O3)\n", res.System, sys.AreaFactor())
	fmt.Printf("cycles        %d\n", res.Cycles)
	fmt.Printf("dyn. instrs   %d (%.0f%% vector)\n", res.DynamicInstrs, 100*res.VectorPct)
	fmt.Printf("total ops     %d\n", res.TotalOps)
	if res.Breakdown != nil {
		fmt.Printf("spawn cost    %d cycles\n", res.SpawnCost)
		fmt.Printf("vmu stalls    %.1f%% of time (Fig 8 metric)\n", 100*res.VMUStallFraction)
		fmt.Println("breakdown (Fig 7 categories):")
		type kv struct {
			k string
			v int64
		}
		var rows []kv
		var total int64
		for k, v := range res.Breakdown {
			rows = append(rows, kv{k, v})
			total += v
		}
		// Tie-break equal counts by category name: sort.Slice is unstable,
		// so ties would otherwise fall back to randomized map order.
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].v != rows[j].v {
				return rows[i].v > rows[j].v
			}
			return rows[i].k < rows[j].k
		})
		for _, r := range rows {
			if r.v == 0 {
				continue
			}
			fmt.Printf("  %-14s %12d  (%.1f%%)\n", r.k, r.v, 100*float64(r.v)/float64(total))
		}
	}
	if compare {
		bRes := matrix[0][1]
		fmt.Printf("speedup       %.2fx over %s (%d cycles)\n",
			res.Speedup(bRes), bRes.System, bRes.Cycles)
	}
	if *statsFmt != "" {
		if err := dumpStats(*statsFmt, res.Stats); err != nil {
			fatal(err)
		}
	}
}

// dumpStats renders the flattened registry snapshot deterministically: the
// sorted gem5-style text report, or a JSON object (json.Marshal sorts map
// keys, so both forms are byte-stable across runs).
func dumpStats(format string, stats map[string]float64) error {
	if format == "json" {
		out, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	names := make([]string, 0, len(stats))
	width := 0
	for name := range stats {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	fmt.Println("\nstats (per-component registry):")
	for _, name := range names {
		fmt.Printf("%-*s  %s\n", width, name, probe.FormatFloat(stats[name]))
	}
	return nil
}

func parseSystem(name string) (eve.System, error) {
	for _, s := range eve.Systems() {
		if strings.EqualFold(s.Name(), name) {
			return s, nil
		}
	}
	return eve.System{}, fmt.Errorf("unknown system %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evesim:", err)
	os.Exit(1)
}
