package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/probe"
)

// TestStatsFilterCLISmoke drives the command body end to end: a real
// simulation, the registry dump restricted to one subtree via -stats-filter.
func TestStatsFilterCLISmoke(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-system=IO", "-kernel=vvadd", "-baseline=", "-stats=text", "-stats-filter=l2."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "cycles") {
		t.Errorf("summary header missing from output:\n%s", text)
	}
	if !strings.Contains(text, "l2.accesses") {
		t.Errorf("filtered dump lacks l2.accesses:\n%s", text)
	}
	for _, leaked := range []string{"core.insts", "l1d.accesses", "llc.accesses", "dram.accesses"} {
		if strings.Contains(text, leaked) {
			t.Errorf("-stats-filter=l2. leaked %s:\n%s", leaked, text)
		}
	}
}

// TestStatsFilterJSONSubtree checks the JSON dump contains exactly the
// requested subtree.
func TestStatsFilterJSONSubtree(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-system=IO", "-kernel=vvadd", "-baseline=", "-stats=json", "-stats-filter=l2.mshr."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	start := strings.IndexByte(text, '{')
	if start < 0 {
		t.Fatalf("no JSON object in output:\n%s", text)
	}
	var stats map[string]float64
	if err := json.Unmarshal([]byte(text[start:]), &stats); err != nil {
		t.Fatalf("stats JSON does not parse: %v\n%s", err, text)
	}
	if len(stats) == 0 {
		t.Fatal("filtered JSON dump is empty")
	}
	for name := range stats {
		if !strings.HasPrefix(name, "l2.mshr.") {
			t.Errorf("key %q escaped the l2.mshr. filter", name)
		}
	}
}

func TestStatsFilterFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-stats-filter=l2."}, &out); err == nil {
		t.Error("-stats-filter without -stats was accepted")
	}
	err := run([]string{"-system=IO", "-kernel=vvadd", "-baseline=", "-stats=text", "-stats-filter=nosuch."}, &out)
	if err == nil || !strings.Contains(err.Error(), "no stats match") {
		t.Errorf("absent filter prefix error = %v, want a 'no stats match' error", err)
	}
}

// TestStatsFilterCommaList checks that -stats-filter unions several subtrees,
// dedups an overlapping pair, and tolerates whitespace around the commas.
func TestStatsFilterCommaList(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-system=IO", "-kernel=vvadd", "-baseline=", "-stats=json",
		"-stats-filter=l2.mshr., core., core.insts"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	start := strings.IndexByte(text, '{')
	if start < 0 {
		t.Fatalf("no JSON object in output:\n%s", text)
	}
	var stats map[string]float64
	if err := json.Unmarshal([]byte(text[start:]), &stats); err != nil {
		t.Fatalf("stats JSON does not parse: %v\n%s", err, text)
	}
	var sawMSHR, sawCore bool
	for name := range stats {
		switch {
		case strings.HasPrefix(name, "l2.mshr."):
			sawMSHR = true
		case strings.HasPrefix(name, "core."):
			sawCore = true
		default:
			t.Errorf("key %q escaped the two requested subtrees", name)
		}
	}
	if !sawMSHR || !sawCore {
		t.Errorf("union missing a subtree (mshr %v, core %v):\n%s", sawMSHR, sawCore, text)
	}
	// The overlapping core./core.insts pair must not duplicate core.insts:
	// a JSON object can't express the duplicate, so check the merge directly.
	merged := filterStats(probe.Stats{
		{Name: "core.insts", Kind: probe.KindCounter, Int: 1},
		{Name: "core.stalls", Kind: probe.KindCounter, Int: 2},
	}, "core., core.insts,, core.insts")
	if len(merged) != 2 {
		t.Errorf("overlapping prefixes merged to %d entries, want 2: %v", len(merged), merged)
	}
}

// TestIntervalsFlagSmoke drives -intervals end to end: the dump must appear,
// parse, and show the EVE-8 borrow/return pair with correct way counts.
func TestIntervalsFlagSmoke(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-system=O3+EVE-8", "-kernel=vvadd", "-baseline=", "-intervals=2000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	marker := "intervals (window 2000 cycles"
	at := strings.Index(text, marker)
	if at < 0 {
		t.Fatalf("interval header missing from output:\n%s", text)
	}
	start := strings.IndexByte(text[at:], '{')
	if start < 0 {
		t.Fatalf("no JSON series after the interval header:\n%s", text)
	}
	var series struct {
		Window  int64 `json:"window"`
		Samples []struct {
			Start  int64              `json:"start"`
			End    int64              `json:"end"`
			Deltas map[string]float64 `json:"deltas"`
		} `json:"samples"`
		Reconfigs []struct {
			Event string `json:"event"`
			Ways  int    `json:"ways"`
			Owned int    `json:"owned"`
		} `json:"reconfigs"`
	}
	if err := json.Unmarshal([]byte(text[at+start:]), &series); err != nil {
		t.Fatalf("interval series does not parse: %v\n%s", err, text)
	}
	if series.Window != 2000 || len(series.Samples) == 0 {
		t.Fatalf("series window %d with %d samples, want 2000 with >=1", series.Window, len(series.Samples))
	}
	var borrow, ret bool
	for _, ev := range series.Reconfigs {
		switch ev.Event {
		case "borrow":
			borrow = ev.Ways == 4 && ev.Owned == 4
		case "return":
			ret = ev.Ways == 4 && ev.Owned == 0
		}
	}
	if !borrow || !ret {
		t.Errorf("timeline lacks the borrow/return pair with 4 ways (borrow %v, return %v):\n%s",
			borrow, ret, text[at:])
	}
}

func TestIntervalsFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-intervals=-5"}, &out); err == nil {
		t.Error("negative -intervals was accepted")
	}
}
