package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestStatsFilterCLISmoke drives the command body end to end: a real
// simulation, the registry dump restricted to one subtree via -stats-filter.
func TestStatsFilterCLISmoke(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-system=IO", "-kernel=vvadd", "-baseline=", "-stats=text", "-stats-filter=l2."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "cycles") {
		t.Errorf("summary header missing from output:\n%s", text)
	}
	if !strings.Contains(text, "l2.accesses") {
		t.Errorf("filtered dump lacks l2.accesses:\n%s", text)
	}
	for _, leaked := range []string{"core.insts", "l1d.accesses", "llc.accesses", "dram.accesses"} {
		if strings.Contains(text, leaked) {
			t.Errorf("-stats-filter=l2. leaked %s:\n%s", leaked, text)
		}
	}
}

// TestStatsFilterJSONSubtree checks the JSON dump contains exactly the
// requested subtree.
func TestStatsFilterJSONSubtree(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-system=IO", "-kernel=vvadd", "-baseline=", "-stats=json", "-stats-filter=l2.mshr."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	start := strings.IndexByte(text, '{')
	if start < 0 {
		t.Fatalf("no JSON object in output:\n%s", text)
	}
	var stats map[string]float64
	if err := json.Unmarshal([]byte(text[start:]), &stats); err != nil {
		t.Fatalf("stats JSON does not parse: %v\n%s", err, text)
	}
	if len(stats) == 0 {
		t.Fatal("filtered JSON dump is empty")
	}
	for name := range stats {
		if !strings.HasPrefix(name, "l2.mshr.") {
			t.Errorf("key %q escaped the l2.mshr. filter", name)
		}
	}
}

func TestStatsFilterFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-stats-filter=l2."}, &out); err == nil {
		t.Error("-stats-filter without -stats was accepted")
	}
	err := run([]string{"-system=IO", "-kernel=vvadd", "-baseline=", "-stats=text", "-stats-filter=nosuch."}, &out)
	if err == nil || !strings.Contains(err.Error(), "no stats match") {
		t.Errorf("absent filter prefix error = %v, want a 'no stats match' error", err)
	}
}
