// Command eve-trace runs a benchmark kernel on one simulated system with the
// probe tracer attached and renders the collected event stream: a
// per-instruction timeline (text or CSV) or a Perfetto-loadable Chrome
// trace-event JSON with one track per component (core, cache levels, DRAM,
// eve.vsu/vmu/dtu) — the raw material for pipeline-style analysis of the
// Fig 7 categories.
//
//	eve-trace -n=8 -kernel=pathfinder -limit=40
//	eve-trace -n=1 -kernel=mmult -csv > trace.csv
//	eve-trace -system=O3+EVE-8 -kernel=vvadd -elems=256 -perfetto -o trace.json
//	eve-trace -system=O3+EVE-8 -kernel=vvadd -elems=256 -perfetto -interval=500 -o trace.json
//	eve-trace -system=O3+EVE-8 -kernel=vvadd -interval=1000 > intervals.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	ieve "repro/internal/eve"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// options bundles the command's flags so the rendering pipeline is testable
// end to end without exec'ing the binary.
type options struct {
	system   string // system name (sim.AllSystems naming); empty = O3+EVE-n
	n        int    // EVE parallelization factor when system is empty
	kernel   string
	elems    int   // nonzero: run vvadd at this element count instead of Small()
	limit    int   // max timeline lines in text/CSV output (0 = all)
	interval int64 // nonzero: sample the stats registry every N cycles
	csv      bool
	perfetto bool
}

// run simulates and renders one trace to w.
func run(opts options, w io.Writer) error {
	cfg, err := resolveSystem(opts)
	if err != nil {
		return err
	}
	if opts.interval < 0 {
		return fmt.Errorf("-interval must be non-negative, got %d", opts.interval)
	}
	cfg.Interval = opts.interval
	k, err := resolveKernel(opts)
	if err != nil {
		return err
	}

	col := &probe.Collect{}
	res := sim.RunTraced(cfg, k, col)
	if res.Err != nil {
		return fmt.Errorf("validation failed: %w", res.Err)
	}

	if opts.perfetto {
		// With -interval the trace grows counter tracks: windowed miss
		// rates, Fig 7 shares and gauges as curves beside the event tracks.
		return probe.WritePerfettoSeries(w, res.System+" "+res.Kernel, col.Events, res.Intervals)
	}
	if res.Intervals != nil {
		// Interval dump without -perfetto: the bare deterministic JSON time
		// series, ready for jq or a byte-diff.
		return res.Intervals.WriteJSON(w)
	}
	return writeTimeline(w, opts, res, col.Events)
}

// resolveSystem picks the simulated system: an explicit -system name wins,
// otherwise the legacy -n selects O3+EVE-n.
func resolveSystem(opts options) (sim.Config, error) {
	if opts.system == "" {
		return sim.Config{Kind: sim.SysO3EVE, N: opts.n}, nil
	}
	for _, c := range sim.AllSystems() {
		if strings.EqualFold(c.Name(), opts.system) {
			return c, nil
		}
	}
	return sim.Config{}, fmt.Errorf("unknown system %q", opts.system)
}

func resolveKernel(opts options) (*workloads.Kernel, error) {
	if opts.elems > 0 {
		if opts.kernel != "vvadd" {
			return nil, fmt.Errorf("-elems only applies to -kernel=vvadd (got %q)", opts.kernel)
		}
		return workloads.NewVVAdd(opts.elems), nil
	}
	return workloads.ByName(workloads.Small(), opts.kernel)
}

// writeTimeline renders the per-instruction commit stream (vector-engine
// KInstr events) as the legacy text/CSV table, followed by the Fig 7
// summary in text mode.
func writeTimeline(w io.Writer, opts options, res sim.Result, events []probe.Event) error {
	bw := bufio.NewWriter(w)
	if opts.csv {
		fmt.Fprintln(bw, "seq,asm,vl,arrival,vcu,vsu_clock,core_block")
	}
	printed := 0
	for i := range events {
		ev := &events[i]
		if ev.Kind != probe.KInstr || (ev.Comp != "eve.vsu" && ev.Comp != "dv") {
			continue
		}
		if opts.limit > 0 && printed >= opts.limit {
			break
		}
		printed++
		if opts.csv {
			fmt.Fprintf(bw, "%d,%q,%d,%d,%d,%d,%d\n",
				ev.Seq, ev.Name, ev.VL, ev.Begin, ev.Aux, ev.End, ev.Aux2)
		} else {
			fmt.Fprintf(bw, "%5d  %-34s vl=%-5d commit=%-8d vcu=%-8d vsu=%-8d block=%d\n",
				ev.Seq, ev.Name, ev.VL, ev.Begin, ev.Aux, ev.End, ev.Aux2)
		}
	}
	if !opts.csv {
		fmt.Fprintf(bw, "\n%s on %s: %d cycles total", res.Kernel, res.System, res.Cycles)
		if opts.limit > 0 {
			fmt.Fprintf(bw, " (first %d instructions shown)", printed)
		}
		fmt.Fprintln(bw)
		bd := res.Breakdown
		for c := ieve.Category(0); c < ieve.NumCategories; c++ {
			if bd[c] > 0 {
				fmt.Fprintf(bw, "  %-14s %10d (%.1f%%)\n", c, bd[c], 100*float64(bd[c])/float64(bd.Total()))
			}
		}
	}
	return bw.Flush()
}

func main() {
	system := flag.String("system", "", "system to simulate (IO, O3, O3+IV, O3+DV, O3+EVE-n); empty = O3+EVE from -n")
	n := flag.Int("n", 8, "EVE parallelization factor (when -system is empty)")
	kernel := flag.String("kernel", "vvadd", "benchmark kernel")
	elems := flag.Int("elems", 0, "vvadd element count override (0 = standard small input)")
	limit := flag.Int("limit", 50, "max trace lines to print (0 = all)")
	csv := flag.Bool("csv", false, "machine-readable CSV output")
	perfetto := flag.Bool("perfetto", false, "Chrome trace-event JSON output (load in ui.perfetto.dev)")
	interval := flag.Int64("interval", 0, "sample the stats registry every N simulated cycles; adds counter tracks to -perfetto, or dumps the series as JSON on its own (0: off)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	opts := options{
		system: *system, n: *n, kernel: *kernel, elems: *elems,
		limit: *limit, interval: *interval, csv: *csv, perfetto: *perfetto,
	}
	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		if f, err = os.Create(*out); err != nil {
			fatal(err)
		}
		w = f
	}
	if err := run(opts, w); err != nil {
		fatal(err)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eve-trace:", err)
	os.Exit(1)
}
