// Command eve-trace runs a benchmark kernel on an EVE design and dumps the
// per-instruction timeline as CSV: disassembly, commit time, VCU dispatch
// slot, engine clock, and any core-blocking time — the raw material for
// pipeline-style analysis of the Fig 7 categories.
//
//	eve-trace -n=8 -kernel=pathfinder -limit=40
//	eve-trace -n=1 -kernel=mmult -csv > trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	ieve "repro/internal/eve"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workloads"
)

type traceSink struct {
	core   *cpu.Core
	engine *ieve.Engine
}

func (s *traceSink) Emit(ev isa.Event) {
	switch ev.Kind {
	case isa.EvScalar:
		s.core.Ops(ev.N)
	case isa.EvScalarMul:
		s.core.Muls(ev.N)
	case isa.EvLoad:
		s.core.Load(ev.Addr)
	case isa.EvStore:
		s.core.Store(ev.Addr)
	case isa.EvVector:
		if block := s.engine.Handle(ev.V, s.core.Now()); block > 0 {
			s.core.AdvanceTo(block)
		}
	}
}

func main() {
	n := flag.Int("n", 8, "EVE parallelization factor")
	kernel := flag.String("kernel", "vvadd", "benchmark kernel")
	limit := flag.Int("limit", 50, "max trace lines to print (0 = all)")
	csv := flag.Bool("csv", false, "machine-readable CSV output")
	flag.Parse()

	ks := workloads.Small()
	k, err := workloads.ByName(ks, *kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eve-trace:", err)
		os.Exit(1)
	}

	h := mem.NewHierarchy()
	core := cpu.New(cpu.O3Config, h)
	engine := ieve.New(ieve.DefaultConfig(*n), h.LLC)
	engine.Spawn(h.SpawnEVE(), 0)

	printed := 0
	if *csv {
		fmt.Println("seq,asm,vl,arrival,vcu,vsu_clock,core_block")
	}
	engine.SetTracer(func(te ieve.TraceEntry) {
		if *limit > 0 && printed >= *limit {
			return
		}
		printed++
		if *csv {
			fmt.Printf("%d,%q,%d,%d,%d,%d,%d\n",
				te.Seq, te.Asm, te.VL, te.Arrival, te.VCU, te.VSUClock, te.Block)
		} else {
			fmt.Printf("%5d  %-34s vl=%-5d commit=%-8d vcu=%-8d vsu=%-8d block=%d\n",
				te.Seq, te.Asm, te.VL, te.Arrival, te.VCU, te.VSUClock, te.Block)
		}
	})

	b := isa.NewBuilder(mem.NewFlat(64<<20), engine.HWVL(), &traceSink{core: core, engine: engine})
	check := k.Run(b, true)
	if err := check(); err != nil {
		fmt.Fprintln(os.Stderr, "eve-trace: validation failed:", err)
		os.Exit(1)
	}
	total := engine.Drain()
	if c := core.Now(); c > total {
		total = c
	}
	if !*csv {
		fmt.Printf("\n%s on EVE-%d: %d cycles total", k.Name, *n, total)
		if *limit > 0 {
			fmt.Printf(" (first %d instructions shown)", printed)
		}
		fmt.Println()
		bd := engine.Breakdown()
		for c := ieve.Category(0); c < ieve.NumCategories; c++ {
			if bd[c] > 0 {
				fmt.Printf("  %-14s %10d (%.1f%%)\n", c, bd[c], 100*float64(bd[c])/float64(bd.Total()))
			}
		}
	}
}
