package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current trace output")

// tinyOpts is the golden configuration: a 256-element vvadd on EVE-8 keeps
// the full event stream to a few hundred events.
func tinyOpts() options {
	return options{system: "O3+EVE-8", kernel: "vvadd", elems: 256, perfetto: true}
}

// TestPerfettoGolden pins the exact trace bytes for a tiny kernel. A timing
// model change that legitimately moves events is refreshed with
//
//	go test ./cmd/eve-trace -run TestPerfettoGolden -update
func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(tinyOpts(), &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "vvadd256.perfetto.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("perfetto trace diverges from %s (%d vs %d bytes).\n"+
			"If the timing-model change is intentional, refresh with -update.", golden, buf.Len(), len(want))
	}
}

// TestPerfettoByteIdentical runs the same traced simulation twice and
// requires byte-identical output — the determinism the CI smoke job diffs.
func TestPerfettoByteIdentical(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(tinyOpts(), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(tinyOpts(), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical traced runs produced different bytes")
	}
}

// TestPerfettoParsesWithRequiredKeys validates the trace against the Chrome
// trace-event contract Perfetto relies on: top-level traceEvents, and ph/pid
// on every event (plus ts on non-metadata events).
func TestPerfettoParsesWithRequiredKeys(t *testing.T) {
	var buf bytes.Buffer
	if err := run(tinyOpts(), &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	tracks := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok {
			t.Fatalf("event %d has no ph: %v", i, ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event %d has no pid: %v", i, ev)
		}
		if ph == "M" {
			if ev["name"] == "thread_name" {
				args := ev["args"].(map[string]any)
				tracks[args["name"].(string)] = true
			}
			continue
		}
		if _, ok := ev["ts"]; !ok {
			t.Fatalf("event %d has no ts: %v", i, ev)
		}
	}
	// The EVE-8 run must produce at least the engine's three tracks plus the
	// core and a cache level.
	for _, want := range []string{"core", "eve.vsu", "eve.vmu", "eve.dtu", "llc"} {
		if !tracks[want] {
			t.Errorf("trace is missing the %q track (have %v)", want, tracks)
		}
	}
}

// TestCSVTimeline smoke-tests the legacy per-instruction table.
func TestCSVTimeline(t *testing.T) {
	var buf bytes.Buffer
	opts := tinyOpts()
	opts.perfetto = false
	opts.csv = true
	if err := run(opts, &buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("CSV has %d lines, want header + rows:\n%s", len(lines), buf.String())
	}
	if got := string(lines[0]); got != "seq,asm,vl,arrival,vcu,vsu_clock,core_block" {
		t.Errorf("CSV header = %q", got)
	}
}

// TestResolveSystemRejectsUnknown covers the flag-validation path.
func TestResolveSystemRejectsUnknown(t *testing.T) {
	if _, err := resolveSystem(options{system: "O3+XYZ"}); err == nil {
		t.Error("unknown system name was accepted")
	}
	cfg, err := resolveSystem(options{system: "o3+dv"})
	if err != nil || cfg.Name() != "O3+DV" {
		t.Errorf("case-insensitive lookup: got %v, %v", cfg, err)
	}
	if _, err := resolveKernel(options{kernel: "mmult", elems: 64}); err == nil {
		t.Error("-elems with a non-vvadd kernel was accepted")
	}
}

// TestIntervalJSONDump covers -interval without -perfetto: the bare series as
// deterministic JSON, windows tiling the run, and the reconfiguration pair.
func TestIntervalJSONDump(t *testing.T) {
	opts := tinyOpts()
	opts.perfetto = false
	opts.interval = 500
	var a, b bytes.Buffer
	if err := run(opts, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(opts, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical interval dumps produced different bytes")
	}
	var series struct {
		Window  int64 `json:"window"`
		Samples []struct {
			Start int64 `json:"start"`
			End   int64 `json:"end"`
		} `json:"samples"`
		Reconfigs []struct {
			Event string `json:"event"`
			Ways  int    `json:"ways"`
		} `json:"reconfigs"`
	}
	if err := json.Unmarshal(a.Bytes(), &series); err != nil {
		t.Fatalf("interval dump is not valid JSON: %v\n%s", err, a.String())
	}
	if series.Window != 500 || len(series.Samples) == 0 {
		t.Fatalf("window %d with %d samples, want 500 with >=1", series.Window, len(series.Samples))
	}
	prevEnd := int64(0)
	for i, sm := range series.Samples {
		if sm.Start != prevEnd {
			t.Errorf("sample %d starts at %d, want %d (windows must tile)", i, sm.Start, prevEnd)
		}
		prevEnd = sm.End
	}
	var borrow, ret bool
	for _, ev := range series.Reconfigs {
		borrow = borrow || (ev.Event == "borrow" && ev.Ways == 4)
		ret = ret || (ev.Event == "return" && ev.Ways == 4)
	}
	if !borrow || !ret {
		t.Errorf("timeline lacks the 4-way borrow/return pair:\n%s", a.String())
	}
}

// TestIntervalPerfettoCounterTracks checks the combined export: -perfetto
// -interval must add "C" counter events for the windowed curves while keeping
// the trace a valid Chrome trace-event document.
func TestIntervalPerfettoCounterTracks(t *testing.T) {
	opts := tinyOpts()
	opts.interval = 200
	var buf bytes.Buffer
	if err := run(opts, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	counters := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev["ph"] != "C" {
			continue
		}
		name, _ := ev["name"].(string)
		counters[name] = true
		for _, key := range []string{"ts", "pid", "args"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("counter event %d (%s) missing %q", i, name, key)
			}
		}
	}
	for _, want := range []string{"l2.miss_rate", "eve.ways_owned", "eve.breakdown", "l2.ways_active"} {
		if !counters[want] {
			t.Errorf("trace is missing the %q counter track (have %v)", want, counters)
		}
	}
}

func TestIntervalFlagValidation(t *testing.T) {
	opts := tinyOpts()
	opts.interval = -1
	var buf bytes.Buffer
	if err := run(opts, &buf); err == nil {
		t.Error("negative -interval was accepted")
	}
}
