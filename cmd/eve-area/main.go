// Command eve-area prints the circuits evaluation (§VI) and the geometry
// taxonomy (§II): area overheads, cycle times, Fig 1 layout facts and the
// Fig 2 latency/throughput sweep measured from the micro-program ROM.
package main

import (
	"fmt"

	"repro/internal/report"
)

func main() {
	fmt.Println(report.Area())
	fmt.Println(report.Fig1())
	fmt.Println(report.Fig2())
}
